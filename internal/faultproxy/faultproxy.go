// Package faultproxy is a TCP chaos proxy for fault-injection tests: it
// forwards connections to an upstream address while injecting the
// network failures a backup system must survive — connections cut after
// N forwarded bytes, half-open stalls (the link goes silent but no FIN
// arrives, as after a client SIGKILL or NAT timeout), added latency and
// jitter, and bandwidth caps.
//
// A Plan describes the faults; Plan.FailConns limits them to the first N
// accepted connections so a test can deterministically break a client's
// first attempt and let its automatic retry through clean:
//
//	px, _ := faultproxy.New(serverAddr)
//	px.SetPlan(faultproxy.Plan{CutC2S: 256 << 10, FailConns: 1})
//	client.ServerAddr = px.Addr()
//	// first backup connection dies after 256 KiB uploaded; the retry
//	// connects unimpeded and the job completes.
//
// The proxy is test infrastructure: correctness over throughput, and
// Close tears down every live connection so stalled transfers cannot
// leak goroutines past the test.
package faultproxy

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Plan describes the faults applied to a proxied connection. Byte
// thresholds count bytes forwarded in that direction on one connection;
// zero disables the fault. C2S is client→upstream, S2C is upstream→client.
type Plan struct {
	// CutC2S / CutS2C close the whole connection (both directions, with
	// FINs) once that many bytes have been forwarded that way.
	CutC2S, CutS2C int64
	// StallC2S / StallS2C stop forwarding after that many bytes but keep
	// both sockets open — a half-open link. Proxy Close or CutAll
	// releases the connection.
	StallC2S, StallS2C int64
	// Latency delays every forwarded read by a fixed duration; Jitter
	// adds a uniform random [0, Jitter) on top.
	Latency, Jitter time.Duration
	// BandwidthBPS caps each direction's forwarding rate in bytes/sec.
	BandwidthBPS int64
	// FailConns applies the faults above only to the first FailConns
	// accepted connections; later connections forward cleanly. Zero
	// applies the plan to every connection.
	FailConns int
}

// faulty reports whether the plan injects anything at all.
func (p Plan) faulty() bool {
	return p.CutC2S > 0 || p.CutS2C > 0 || p.StallC2S > 0 || p.StallS2C > 0 ||
		p.Latency > 0 || p.Jitter > 0 || p.BandwidthBPS > 0
}

// Proxy is a running chaos proxy. Safe for concurrent use.
type Proxy struct {
	upstream string
	ln       net.Listener

	mu       sync.Mutex
	plan     Plan
	accepted int
	conns    map[net.Conn]struct{}
	severs   map[int64]func() // per-connection closeBoth, for CutAll/Close
	severSeq int64
	closed   bool
	release  chan struct{} // closed on Close: unblocks stalled pipes

	wg sync.WaitGroup
}

// New starts a proxy on an ephemeral localhost port forwarding to
// upstream. The initial plan is clean (no faults) until SetPlan.
func New(upstream string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultproxy: listen: %w", err)
	}
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		severs:   make(map[int64]func()),
		release:  make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetPlan installs the fault plan for subsequently accepted connections
// and resets the accepted-connection counter FailConns is judged against.
func (p *Proxy) SetPlan(plan Plan) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.plan = plan
	p.accepted = 0
}

// Accepted returns the number of connections accepted since the last
// SetPlan — how many attempts a retrying client actually made.
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// CutAll immediately severs every live proxied connection (the listener
// keeps accepting). Simulates a network partition killing in-flight
// transfers. Each connection's teardown closes its down channel, so
// pipes parked in a stall (which no socket close can unblock) exit too
// instead of leaking until proxy Close.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	severs := make([]func(), 0, len(p.severs))
	for _, sever := range p.severs {
		severs = append(severs, sever)
	}
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	for _, sever := range severs {
		sever()
	}
}

// Close stops the proxy, severs all connections, releases stalled
// transfers and waits for every forwarding goroutine to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.release)
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			return
		}
		p.accepted++
		plan := p.plan
		if plan.FailConns > 0 && p.accepted > plan.FailConns {
			plan = Plan{} // past the faulty prefix: forward clean
		}
		p.conns[client] = struct{}{}
		p.mu.Unlock()

		p.wg.Add(1)
		go p.serve(client, plan)
	}
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// addSever registers a connection pair's teardown for CutAll; the
// returned id unregisters it when the pair's serve goroutine exits.
func (p *Proxy) addSever(sever func()) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.severSeq++
	p.severs[p.severSeq] = sever
	return p.severSeq
}

func (p *Proxy) dropSever(id int64) {
	p.mu.Lock()
	delete(p.severs, id)
	p.mu.Unlock()
}

func (p *Proxy) serve(client net.Conn, plan Plan) {
	defer p.wg.Done()
	defer p.forget(client)
	defer client.Close()

	up, err := net.DialTimeout("tcp", p.upstream, 10*time.Second)
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		up.Close()
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	defer p.forget(up)
	defer up.Close()

	// closeBoth severs the connection from either direction's pipe; the
	// other direction's blocked Read then fails and its pipe exits. It
	// also closes down, the only signal that reaches a pipe parked in a
	// half-open stall (a socket close cannot unblock it — it is not in a
	// Read).
	down := make(chan struct{})
	var once sync.Once
	closeBoth := func() {
		once.Do(func() {
			close(down)
			client.Close()
			up.Close()
		})
	}
	id := p.addSever(closeBoth)
	defer p.dropSever(id)

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.pipe(up, client, plan.CutC2S, plan.StallC2S, plan, closeBoth, down)
	}()
	p.pipe(client, up, plan.CutS2C, plan.StallS2C, plan, closeBoth, down)
}

// pipe forwards src→dst applying the plan's faults for this direction.
func (p *Proxy) pipe(dst, src net.Conn, cutAfter, stallAfter int64, plan Plan, closeBoth func(), down <-chan struct{}) {
	buf := make([]byte, 32<<10)
	var forwarded int64
	for {
		limit := int64(len(buf))
		if cutAfter > 0 {
			if rem := cutAfter - forwarded; rem < limit {
				limit = rem
			}
		}
		if stallAfter > 0 {
			if rem := stallAfter - forwarded; rem < limit {
				limit = rem
			}
		}
		n, rerr := src.Read(buf[:limit])
		if n > 0 {
			if d := p.delay(plan, n); d > 0 {
				select {
				case <-time.After(d):
				case <-p.release:
					closeBoth()
					return
				case <-down:
					return
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				closeBoth()
				return
			}
			forwarded += n64(n)
			if cutAfter > 0 && forwarded >= cutAfter {
				closeBoth() // cut: sever both directions
				return
			}
			if stallAfter > 0 && forwarded >= stallAfter {
				// Half-open: stop forwarding, keep both sockets open
				// until proxy Close, CutAll, or the opposite pipe
				// tearing the pair down releases the stall.
				select {
				case <-p.release:
				case <-down:
				}
				closeBoth()
				return
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				// Clean half-close: forward the FIN, let the reverse
				// direction keep flowing.
				if cw, ok := dst.(interface{ CloseWrite() error }); ok {
					cw.CloseWrite()
					return
				}
			}
			closeBoth()
			return
		}
	}
}

// delay computes the injected latency + pacing for n forwarded bytes.
func (p *Proxy) delay(plan Plan, n int) time.Duration {
	d := plan.Latency
	if plan.Jitter > 0 {
		d += time.Duration(rand.Int63n(int64(plan.Jitter)))
	}
	if plan.BandwidthBPS > 0 {
		d += time.Duration(n64(n) * int64(time.Second) / plan.BandwidthBPS)
	}
	return d
}

func n64(n int) int64 { return int64(n) }
