package debar

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"debar/internal/proto"
)

// TestRestoreLargerThanMaxFrame is the acceptance scenario for the
// chunk-streamed restore path: a file bigger than any single wire frame
// could ever carry (> proto.MaxFrame) backs up and restores
// byte-identically, and the process heap stays bounded throughout the
// restore — the stream never materialises the file on either end.
//
// The content is one deterministic 1 MB block repeated past the frame
// limit: chunking and fingerprinting process the full stream while
// dedup-1 keeps the stored and transferred volume tiny, so the test
// exercises gigabyte-scale streaming without gigabyte-scale storage.
func TestRestoreLargerThanMaxFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("gigabyte-scale restore: skipped with -short")
	}
	if raceEnabled {
		t.Skip("gigabyte-scale restore: too slow under the race detector")
	}

	const (
		blockSize = 1 << 20
		blocks    = (proto.MaxFrame / blockSize) + 128 // 1.125 GB: comfortably past the limit
		totalSize = int64(blocks) * blockSize
	)
	block := make([]byte, blockSize)
	rng := newDetRand(1234)
	for i := 0; i < len(block); i += 8 {
		binary.LittleEndian.PutUint64(block[i:], rng.next())
	}

	src := t.TempDir()
	srcPath := filepath.Join(src, "huge.bin")
	f, err := os.Create(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	for i := 0; i < blocks; i++ {
		if _, err := bw.Write(block); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	sys, err := StartLocal(1, ServerConfig{IndexBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	c := NewClient(sys.ServerAddrs[0], "huge-client")
	stats, err := c.Backup("huge-job", src)
	if err != nil {
		t.Fatalf("backup: %v", err)
	}
	if stats.LogicalBytes != totalSize {
		t.Fatalf("logical bytes %d, want %d", stats.LogicalBytes, totalSize)
	}
	// The repeated block must have deduplicated: the transfer cannot
	// approach the logical size (this is also what keeps the in-memory
	// stores small enough for this test to exist).
	if stats.TransferredBytes > totalSize/16 {
		t.Fatalf("transferred %d of %d logical bytes: dedup-1 not effective", stats.TransferredBytes, totalSize)
	}
	if err := sys.RunDedup2(); err != nil {
		t.Fatalf("dedup-2: %v", err)
	}

	// Sample the heap during the restore: with batches capped at 4 MB and
	// a default window of 4, the whole exchange must run in tens of
	// megabytes, never within an order of magnitude of the 1.1 GB file.
	const heapBudget = 256 << 20
	var maxHeap atomic.Uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > maxHeap.Load() {
				maxHeap.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
		}
	}()

	dst := t.TempDir()
	n, err := c.Restore("huge-job", dst)
	close(stop)
	<-sampled
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d files, want 1", n)
	}
	if peak := maxHeap.Load(); peak > heapBudget {
		t.Fatalf("heap peaked at %d MB during a streamed restore (budget %d MB): the path is buffering the file",
			peak>>20, heapBudget>>20)
	}

	// Byte-identical, compared streaming (2 × 1.1 GB will not fit the
	// heap budget this test just asserted).
	if err := filesEqualStreaming(srcPath, filepath.Join(dst, "huge.bin")); err != nil {
		t.Fatal(err)
	}
}

// filesEqualStreaming compares two files in bounded memory.
func filesEqualStreaming(a, b string) error {
	fa, err := os.Open(a)
	if err != nil {
		return err
	}
	defer fa.Close()
	fb, err := os.Open(b)
	if err != nil {
		return err
	}
	defer fb.Close()
	sa, err := fa.Stat()
	if err != nil {
		return err
	}
	sb, err := fb.Stat()
	if err != nil {
		return err
	}
	if sa.Size() != sb.Size() {
		return fmt.Errorf("%s is %d bytes, %s is %d", a, sa.Size(), b, sb.Size())
	}
	ra := bufio.NewReaderSize(fa, 1<<20)
	rb := bufio.NewReaderSize(fb, 1<<20)
	bufA := make([]byte, 1<<20)
	bufB := make([]byte, 1<<20)
	var off int64
	for {
		na, errA := io.ReadFull(ra, bufA)
		nb, errB := io.ReadFull(rb, bufB)
		if na != nb || !bytes.Equal(bufA[:na], bufB[:nb]) {
			return fmt.Errorf("%s and %s differ within the megabyte at offset %d", a, b, off)
		}
		off += int64(na)
		if errA == io.EOF || errA == io.ErrUnexpectedEOF {
			return nil // same length already verified by the Stat check
		}
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
	}
}
