//go:build linux

package fsx

import (
	"os"
	"syscall"
)

func syncData(f *os.File) error {
	if err := syscall.Fdatasync(int(f.Fd())); err != nil {
		return &os.PathError{Op: "fdatasync", Path: f.Name(), Err: err}
	}
	return nil
}
