package diskindex

import "debar/internal/fp"

// DefaultScanBuckets is the default sequential window: how many buckets are
// read per large sequential I/O during SIL/SIU ("we can sequentially read
// thousands of buckets per I/O", §5.2).
const DefaultScanBuckets = 4096

// Window is one in-memory run of consecutive buckets during a sequential
// scan. Start is the first bucket number; the window holds Count buckets.
type Window struct {
	ix    *Index
	Start uint64
	Count int
	buf   []byte
}

// Bucket returns the raw image of bucket k (which must lie in the window).
func (w *Window) Bucket(k uint64) []byte {
	off := (k - w.Start) * uint64(w.ix.cfg.BucketBytes())
	return w.buf[off : off+uint64(w.ix.cfg.BucketBytes())]
}

// Contains reports whether bucket k lies in this window.
func (w *Window) Contains(k uint64) bool {
	return k >= w.Start && k < w.Start+uint64(w.Count)
}

// ForEachEntry visits the stored entries of every bucket in the window.
func (w *Window) ForEachEntry(fn func(bucket uint64, e fp.Entry)) {
	nslots := w.ix.cfg.EntriesPerBucket()
	for k := w.Start; k < w.Start+uint64(w.Count); k++ {
		b := w.Bucket(k)
		for i := 0; i < nslots; i++ {
			e, _ := fp.DecodeEntry(bucketSlot(b, i))
			if !e.FP.IsZero() {
				fn(k, e)
			}
		}
	}
}

// InsertInWindow places e into its target bucket if that bucket lies in the
// window, overflowing to in-window neighbours as in Insert. It returns
// ErrIndexFull if the home bucket and both (in-window) neighbours are full.
// If the fingerprint is already present (duplicate storing under
// asynchronous updates, §5.4) the existing mapping is kept and the insert
// is a no-op. This is the write primitive of SIU: all mutations happen on
// the in-memory window and reach disk in one sequential write.
func (w *Window) InsertInWindow(e fp.Entry) error {
	k := w.ix.BucketOf(e.FP)
	nslots := w.ix.cfg.EntriesPerBucket()
	try := func(b uint64) bool {
		if !w.Contains(b) {
			return false
		}
		img := w.Bucket(b)
		_, _, found, free := scanBucket(img, e.FP, nslots)
		if found {
			return true // already mapped; keep the existing entry
		}
		if free < 0 {
			return false
		}
		if err := e.Encode(bucketSlot(img, free)); err != nil {
			return false
		}
		w.ix.count++
		return true
	}
	if try(k) {
		return nil
	}
	for _, b := range w.ix.neighbours(k, e.FP) {
		if try(b) {
			return nil
		}
	}
	return ErrIndexFull
}

// Scan sequentially reads the whole index in windows of up to scanBuckets
// buckets, invoking fn on each read-only window. It charges one large
// sequential read covering the index. This is the I/O engine of SIL (§5.2).
func (ix *Index) Scan(scanBuckets int, fn func(*Window) error) error {
	if scanBuckets <= 0 {
		scanBuckets = DefaultScanBuckets
	}
	return ix.scan(scanBuckets, false, fn)
}

// Update sequentially reads the index in windows, lets fn mutate each
// window in memory, and writes each window back. It charges a sequential
// read plus a sequential write covering the index: the I/O engine of SIU
// (§5.4).
func (ix *Index) Update(scanBuckets int, fn func(*Window) error) error {
	if scanBuckets <= 0 {
		scanBuckets = DefaultScanBuckets
	}
	return ix.scan(scanBuckets, true, fn)
}

func (ix *Index) scan(scanBuckets int, write bool, fn func(*Window) error) error {
	total := ix.cfg.Buckets()
	bb := ix.cfg.BucketBytes()
	buf := make([]byte, scanBuckets*bb)
	for start := uint64(0); start < total; start += uint64(scanBuckets) {
		count := scanBuckets
		if rem := total - start; rem < uint64(count) {
			count = int(rem)
		}
		chunk := buf[:count*bb]
		if err := ix.store.ReadAt(chunk, ix.bucketOff(start)); err != nil {
			return err
		}
		if ix.disk != nil {
			ix.disk.SeqRead(int64(len(chunk)))
		}
		w := &Window{ix: ix, Start: start, Count: count, buf: chunk}
		if err := fn(w); err != nil {
			return err
		}
		if write {
			if err := ix.store.WriteAt(chunk, ix.bucketOff(start)); err != nil {
				return err
			}
			if ix.disk != nil {
				ix.disk.SeqWrite(int64(len(chunk)))
			}
		}
	}
	return nil
}
