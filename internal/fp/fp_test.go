package fp

import (
	"bytes"
	"crypto/sha1"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewMatchesSHA1(t *testing.T) {
	data := []byte("hello debar")
	want := sha1.Sum(data)
	if got := New(data); got != FP(want) {
		t.Fatalf("New = %v, want %v", got, FP(want))
	}
}

func TestZeroIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if New([]byte("x")).IsZero() {
		t.Fatal("real fingerprint reported as zero")
	}
}

func TestPrefix(t *testing.T) {
	var f FP
	f[0] = 0xAB // 1010 1011
	f[1] = 0xCD // 1100 1101
	cases := []struct {
		n    uint
		want uint64
	}{
		{0, 0},
		{1, 1},
		{4, 0xA},
		{8, 0xAB},
		{12, 0xABC},
		{16, 0xABCD},
		{64, 0xABCD << 48},
	}
	for _, c := range cases {
		if got := f.Prefix(c.n); got != c.want {
			t.Errorf("Prefix(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestPrefixPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Prefix(65) did not panic")
		}
	}()
	var f FP
	f.Prefix(65)
}

func TestPrefixConsistentWithCompare(t *testing.T) {
	// If f < g lexicographically then Prefix(f) <= Prefix(g) for any width.
	err := quick.Check(func(a, b uint64, width uint8) bool {
		n := uint(width%64) + 1
		f, g := FromUint64(a), FromUint64(b)
		if f.Less(g) {
			return f.Prefix(n) <= g.Prefix(n)
		}
		return g.Prefix(n) <= f.Prefix(n)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := New([]byte("round trip"))
	g, err := Parse(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatalf("Parse(String) = %v, want %v", g, f)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("zz"); err == nil {
		t.Error("Parse of non-hex succeeded")
	}
	if _, err := Parse("abcd"); err == nil {
		t.Error("Parse of short hex succeeded")
	}
}

func TestSortOrders(t *testing.T) {
	fps := make([]FP, 500)
	for i := range fps {
		fps[i] = FromUint64(uint64(i) * 7919)
	}
	Sort(fps)
	if !sort.SliceIsSorted(fps, func(i, j int) bool { return fps[i].Less(fps[j]) }) {
		t.Fatal("Sort did not order fingerprints")
	}
	// Sorting by number also sorts by any prefix width (the disk-index
	// number-ordering property, paper §4.1).
	for i := 1; i < len(fps); i++ {
		if fps[i-1].Prefix(26) > fps[i].Prefix(26) {
			t.Fatalf("prefix order violated at %d", i)
		}
	}
}

func TestEntryEncodeDecode(t *testing.T) {
	e := Entry{FP: New([]byte("entry")), CID: 0x1234567890}
	buf := make([]byte, EntrySize)
	if err := e.Encode(buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("decode = %+v, want %+v", got, e)
	}
}

func TestEntryEncodeShortBuffer(t *testing.T) {
	var e Entry
	if err := e.Encode(make([]byte, EntrySize-1)); err != ErrShortEntry {
		t.Fatalf("err = %v, want ErrShortEntry", err)
	}
	if _, err := DecodeEntry(make([]byte, 3)); err != ErrShortEntry {
		t.Fatalf("err = %v, want ErrShortEntry", err)
	}
}

func TestEntryRoundTripQuick(t *testing.T) {
	err := quick.Check(func(seed uint64, cid uint64) bool {
		e := Entry{FP: FromUint64(seed), CID: ContainerID(cid % (1 << 40))}
		buf := make([]byte, EntrySize)
		if err := e.Encode(buf); err != nil {
			return false
		}
		got, err := DecodeEntry(buf)
		return err == nil && got == e
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNilContainer(t *testing.T) {
	if !NilContainer.Valid() {
		t.Error("NilContainer should be a valid 40-bit value")
	}
	if NilContainer.String() != "nil" {
		t.Errorf("NilContainer.String() = %q", NilContainer.String())
	}
	if ContainerID(1 << 41).Valid() {
		t.Error("41-bit ID reported valid")
	}
	buf := make([]byte, EntrySize)
	e := Entry{CID: NilContainer}
	if err := e.Encode(buf); err != nil {
		t.Fatal(err)
	}
	got, _ := DecodeEntry(buf)
	if got.CID != NilContainer {
		t.Fatalf("NilContainer round-trip = %v", got.CID)
	}
}

func TestGeneratorDisjointSubspaces(t *testing.T) {
	g1 := NewGenerator(0, 1000)
	g2 := NewGenerator(1000, 2000)
	seen := make(map[FP]bool)
	for i := 0; i < 1000; i++ {
		seen[g1.Next()] = true
	}
	for i := 0; i < 1000; i++ {
		if seen[g2.Next()] {
			t.Fatal("generators over disjoint subspaces collided")
		}
	}
}

func TestGeneratorExhaustionPanics(t *testing.T) {
	g := NewGenerator(5, 6)
	g.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted generator did not panic")
		}
	}()
	g.Next()
}

func TestSectionReproducible(t *testing.T) {
	g := NewGenerator(100, 0)
	var direct []FP
	for i := 0; i < 50; i++ {
		direct = append(direct, g.Next())
	}
	sec := Section(100, 50)
	for i := range sec {
		if sec[i] != direct[i] {
			t.Fatalf("Section[%d] != generator output", i)
		}
	}
}

func TestFromUint64Distribution(t *testing.T) {
	// The paper relies on SHA-1 randomness to distribute fingerprints
	// uniformly over buckets (§4.1). Check a coarse chi-squared-ish bound:
	// 16 buckets, 16k fingerprints, each bucket within 20% of the mean.
	const n, buckets = 1 << 14, 16
	counts := make([]int, buckets)
	for i := uint64(0); i < n; i++ {
		counts[FromUint64(i).Prefix(4)]++
	}
	mean := n / buckets
	for b, c := range counts {
		if c < mean*8/10 || c > mean*12/10 {
			t.Fatalf("bucket %d has %d fingerprints, mean %d: non-uniform", b, c, mean)
		}
	}
}

func TestCompare(t *testing.T) {
	a, b := FromUint64(1), FromUint64(2)
	if a.Compare(a) != 0 {
		t.Error("Compare(self) != 0")
	}
	if a.Compare(b) == 0 {
		t.Error("distinct fingerprints compare equal")
	}
	if a.Compare(b)+b.Compare(a) != 0 {
		t.Error("Compare not antisymmetric")
	}
	if bytes.Compare(a[:], b[:]) != a.Compare(b) {
		t.Error("Compare disagrees with bytes.Compare")
	}
}

func BenchmarkNew8K(b *testing.B) {
	data := make([]byte, 8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		New(data)
	}
}

func BenchmarkFromUint64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FromUint64(uint64(i))
	}
}
