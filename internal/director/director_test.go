package director

import (
	"testing"

	"debar/internal/fp"
	"debar/internal/proto"
)

func TestDefineJob(t *testing.T) {
	d := New()
	if err := d.DefineJob(Job{}); err == nil {
		t.Fatal("nameless job accepted")
	}
	if err := d.DefineJob(Job{Name: "b", Client: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := d.DefineJob(Job{Name: "a", Schedule: "daily at 1.05am"}); err != nil {
		t.Fatal(err)
	}
	jobs := d.Jobs()
	if len(jobs) != 2 || jobs[0].Name != "a" || jobs[1].Name != "b" {
		t.Fatalf("jobs = %+v", jobs)
	}
}

func TestAssignServerBalances(t *testing.T) {
	d := New()
	if _, err := d.AssignServer(); err == nil {
		t.Fatal("assignment without servers succeeded")
	}
	d.RegisterServer("s0")
	d.RegisterServer("s1")
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		addr, err := d.AssignServer()
		if err != nil {
			t.Fatal(err)
		}
		counts[addr]++
	}
	if counts["s0"] != 5 || counts["s1"] != 5 {
		t.Fatalf("unbalanced assignment: %v", counts)
	}
}

func TestRunsAndFileIndices(t *testing.T) {
	d := New()
	run1 := d.NewRun("job", "client")
	entry := proto.FileEntry{Path: "f1", Chunks: []fp.FP{fp.FromUint64(1), fp.FromUint64(2)}}
	if err := d.PutFileIndex("job", run1, entry); err != nil {
		t.Fatal(err)
	}
	if err := d.PutFileIndex("job", 999, entry); err == nil {
		t.Fatal("unknown run accepted")
	}
	// Until the run is marked complete it is not a restore source.
	if _, _, err := d.LatestFiles("job"); err == nil {
		t.Fatal("incomplete run served as restore source")
	}
	if err := d.EndRun("job", 999); err == nil {
		t.Fatal("EndRun accepted unknown run")
	}
	if err := d.EndRun("job", run1); err != nil {
		t.Fatal(err)
	}
	id, files, err := d.LatestFiles("job")
	if err != nil || id != run1 || len(files) != 1 {
		t.Fatalf("LatestFiles = %d files run %d err %v", len(files), id, err)
	}
	if _, _, err := d.LatestFiles("ghost"); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestFilterFPsComeFromPreviousRun(t *testing.T) {
	d := New()
	if fps := d.FilterFPs("job"); fps != nil {
		t.Fatal("filter fps for unknown job")
	}
	run1 := d.NewRun("job", "c")
	_ = d.PutFileIndex("job", run1, proto.FileEntry{
		Path: "f", Chunks: []fp.FP{fp.FromUint64(1), fp.FromUint64(2)},
	})
	// An incomplete run contributes nothing.
	if fps := d.FilterFPs("job"); fps != nil {
		t.Fatal("filter fps from incomplete run")
	}
	_ = d.EndRun("job", run1)
	// A new (empty) run does not hide the previous completed one.
	_ = d.NewRun("job", "c")
	fps := d.FilterFPs("job")
	if len(fps) != 2 {
		t.Fatalf("filter fps = %d, want 2", len(fps))
	}
}

func TestJobChainAccumulatesRuns(t *testing.T) {
	d := New()
	r1 := d.NewRun("chain", "c")
	_ = d.PutFileIndex("chain", r1, proto.FileEntry{Path: "v1", Chunks: []fp.FP{fp.FromUint64(1)}})
	_ = d.EndRun("chain", r1)
	r2 := d.NewRun("chain", "c")
	_ = d.PutFileIndex("chain", r2, proto.FileEntry{Path: "v2", Chunks: []fp.FP{fp.FromUint64(2)}})
	_ = d.EndRun("chain", r2)
	id, files, err := d.LatestFiles("chain")
	if err != nil || id != r2 {
		t.Fatalf("latest run = %d err %v", id, err)
	}
	if files[0].Path != "v2" {
		t.Fatalf("latest files = %+v", files)
	}
	// Filtering fingerprints follow the newest completed run.
	fps := d.FilterFPs("chain")
	if len(fps) != 1 || fps[0] != fp.FromUint64(2) {
		t.Fatalf("filter fps = %v", fps)
	}
}

func TestServeHandlesMetadataProtocol(t *testing.T) {
	d := New()
	addr, err := d.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	conn, err := proto.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.Send(proto.RegisterServer{Addr: "srv:1"}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ok, is := msg.(proto.RegisterOK); !is || ok.ServerID != 0 {
		t.Fatalf("RegisterOK = %+v", msg)
	}

	if err := conn.Send(proto.NewRun{JobName: "j", Client: "c"}); err != nil {
		t.Fatal(err)
	}
	msg, _ = conn.Recv()
	run := msg.(proto.NewRunOK)

	entry := proto.FileEntry{Path: "x", Chunks: []fp.FP{fp.FromUint64(5)}}
	_ = conn.Send(proto.PutFileIndex{JobName: "j", RunID: run.RunID, Entry: entry})
	msg, _ = conn.Recv()
	if ack := msg.(proto.Ack); !ack.OK {
		t.Fatalf("PutFileIndex refused: %s", ack.Err)
	}

	_ = conn.Send(proto.EndRun{JobName: "j", RunID: run.RunID})
	msg, _ = conn.Recv()
	if ack := msg.(proto.Ack); !ack.OK {
		t.Fatalf("EndRun refused: %s", ack.Err)
	}

	_ = conn.Send(proto.GetJobFiles{JobName: "j"})
	msg, _ = conn.Recv()
	files := msg.(proto.JobFiles)
	if len(files.Entries) != 1 || files.Entries[0].Path != "x" {
		t.Fatalf("JobFiles = %+v", files)
	}

	_ = conn.Send(proto.GetFilterFPs{JobName: "j"})
	msg, _ = conn.Recv()
	ff := msg.(proto.FilterFPs)
	if len(ff.FPs) != 1 || ff.FPs[0] != fp.FromUint64(5) {
		t.Fatalf("FilterFPs = %+v", ff)
	}

	// Unknown messages get a graceful error Ack.
	_ = conn.Send(proto.BackupStart{JobName: "j"})
	msg, _ = conn.Recv()
	if ack, is := msg.(proto.Ack); !is || ack.OK {
		t.Fatalf("unexpected-message reply = %+v", msg)
	}
}
