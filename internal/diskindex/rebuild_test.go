package diskindex

import (
	"testing"

	"debar/internal/fp"
)

func TestRebuildRecoversIndex(t *testing.T) {
	// Build a populated index, extract its entries (as a repository scan
	// would yield them), and reconstruct a fresh index from scratch —
	// the §4.1 corrupted-index recovery path.
	orig := mustNew(t, smallCfg())
	var entries []fp.Entry
	for i := 0; i < 700; i++ {
		e := fp.Entry{FP: fp.FromUint64(uint64(i)), CID: fp.ContainerID(i % 50)}
		entries = append(entries, e)
		if err := orig.Insert(e); err != nil {
			t.Fatal(err)
		}
	}

	rebuilt, err := Rebuild(NewMemStore(0), smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Count() != orig.Count() {
		t.Fatalf("rebuilt %d entries, want %d", rebuilt.Count(), orig.Count())
	}
	for _, e := range entries {
		cid, err := rebuilt.Lookup(e.FP)
		if err != nil || cid != e.CID {
			t.Fatalf("rebuilt lookup %v: cid=%v err=%v", e.FP.Short(), cid, err)
		}
	}
}

func TestRebuildKeepsFirstDuplicateMapping(t *testing.T) {
	// Duplicate storing (§5.4) can leave the same fingerprint in two
	// containers; rebuild keeps one mapping, matching SIU.
	f := fp.FromUint64(7)
	entries := []fp.Entry{{FP: f, CID: 1}, {FP: f, CID: 2}}
	ix, err := Rebuild(NewMemStore(0), smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Count() != 1 {
		t.Fatalf("count = %d, want 1", ix.Count())
	}
	cid, err := ix.Lookup(f)
	if err != nil {
		t.Fatal(err)
	}
	if cid != 1 && cid != 2 {
		t.Fatalf("cid = %v", cid)
	}
}

func TestRebuildIntoLargerGeometry(t *testing.T) {
	// Recovery may target a larger index (e.g. after losing the scaled
	// copy): same entries, more buckets.
	var entries []fp.Entry
	for i := 0; i < 500; i++ {
		entries = append(entries, fp.Entry{FP: fp.FromUint64(uint64(i)), CID: 3})
	}
	ix, err := Rebuild(NewMemStore(0), Config{BucketBits: 10, BucketBlocks: 1}, entries)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Count() != 500 {
		t.Fatalf("count = %d", ix.Count())
	}
	for _, e := range entries {
		if _, err := ix.Lookup(e.FP); err != nil {
			t.Fatal(err)
		}
	}
}
