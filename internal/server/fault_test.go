package server_test

import (
	"errors"
	"testing"
	"time"

	"debar/internal/director"
	"debar/internal/fp"
	"debar/internal/proto"
	"debar/internal/server"
	"debar/internal/store"
)

// TestChunkBatchAckHeldForWALSync is the durability-ack ordering
// regression test: the ChunkBatch verdict must be held until the
// session's group-commit window has fsynced. With the sync layer
// failing, a positive ack would promise durability the disk never
// delivered — the client must see a read-only refusal instead, and the
// store must latch read-only for subsequent sessions.
func TestChunkBatchAckHeldForWALSync(t *testing.T) {
	dir := director.New()
	dirAddr, err := dir.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })

	eng, err := store.Open(t.TempDir(), store.Options{IndexBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.GroupCommit() {
		t.Fatal("engine did not enable group commit by default")
	}
	injected := errors.New("injected media failure")
	eng.ChunkLog().SetSyncFailFunc(func() error { return injected })
	t.Cleanup(func() { eng.ChunkLog().SetSyncFailFunc(nil) })

	srv, err := server.New(server.Config{DirectorAddr: dirAddr, Storage: eng})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srvAddr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := proto.Dial(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(proto.BackupStart{JobName: "sync-fail-job", Client: "c1"}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ok, is := msg.(proto.BackupStartOK)
	if !is {
		t.Fatalf("BackupStart reply = %T %+v", msg, msg)
	}

	chunk := []byte("chunk whose ack must wait for the covering fsync")
	f := fp.New(chunk)
	if err := conn.Send(proto.FPBatch{
		SessionID: ok.SessionID, Seq: 0, FPs: []fp.FP{f}, Sizes: []uint32{uint32(len(chunk))},
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err = conn.Recv(); err != nil {
		t.Fatal(err)
	} else if v, is := msg.(proto.FPVerdicts); !is || len(v.Verdicts) != 1 || !v.NeedsTransfer(0) {
		t.Fatalf("FPBatch reply = %T %+v, want verdicts=[send]", msg, msg)
	}

	if err := conn.Send(proto.ChunkBatch{
		SessionID: ok.SessionID, FPs: []fp.FP{f}, Data: [][]byte{chunk},
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err = conn.Recv(); err != nil {
		t.Fatal(err)
	} else if ack, is := msg.(proto.Ack); !is || ack.OK {
		t.Fatalf("ChunkBatch over a failing sync layer = %T %+v, want refused Ack", msg, msg)
	} else if ack.Code != proto.CodeReadOnly {
		t.Fatalf("refusal code = %v, want %v", ack.Code, proto.CodeReadOnly)
	}

	// The failed durability sync latches the store read-only: a fresh
	// session must be refused up front.
	c2, err := proto.Dial(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Send(proto.BackupStart{JobName: "after-fail", Client: "c2"}); err != nil {
		t.Fatal(err)
	}
	if msg, err = c2.Recv(); err != nil {
		t.Fatal(err)
	} else if ack, is := msg.(proto.Ack); !is || ack.OK || ack.Code != proto.CodeReadOnly {
		t.Fatalf("BackupStart after failed sync = %T %+v, want read-only refusal", msg, msg)
	}
}

// TestIdleSessionReaped is the reaper regression test: a client opens a
// backup session, ships one chunk, and vanishes without closing the
// connection (no FIN ever arrives — the handler can only notice via its
// idle read deadline). The server must reap the session, and the orphaned
// chunk's fingerprint must survive into the pending set so the next
// dedup-2 pass stores it rather than the quiet-truncation path discarding
// it.
func TestIdleSessionReaped(t *testing.T) {
	dir := director.New()
	dirAddr, err := dir.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	srv, err := server.New(server.Config{
		DirectorAddr: dirAddr,
		IndexBits:    12,
		IdleTimeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srvAddr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := proto.Dial(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(proto.BackupStart{JobName: "reap-job", Client: "ghost"}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ok, is := msg.(proto.BackupStartOK)
	if !is {
		t.Fatalf("BackupStart reply = %T %+v", msg, msg)
	}
	sess := ok.SessionID

	chunk := []byte("orphaned chunk payload that must survive the vanished session")
	f := fp.New(chunk)
	if err := conn.Send(proto.FPBatch{
		SessionID: sess, Seq: 0, FPs: []fp.FP{f}, Sizes: []uint32{uint32(len(chunk))},
	}); err != nil {
		t.Fatal(err)
	}
	msg, err = conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	verdicts, is := msg.(proto.FPVerdicts)
	if !is || len(verdicts.Verdicts) != 1 || !verdicts.NeedsTransfer(0) {
		t.Fatalf("FPBatch reply = %T %+v, want verdicts=[send]", msg, msg)
	}
	if err := conn.Send(proto.ChunkBatch{
		SessionID: sess, FPs: []fp.FP{f}, Data: [][]byte{chunk},
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err = conn.Recv(); err != nil {
		t.Fatal(err)
	} else if ack, is := msg.(proto.Ack); !is || !ack.OK {
		t.Fatalf("ChunkBatch reply = %T %+v", msg, msg)
	}

	if n := srv.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d before the idle reap, want 1", n)
	}

	// Go silent. The TCP connection stays open (no Close), so only the
	// idle read deadline can free the handler and reclaim the session.
	deadline := time.Now().Add(10 * time.Second)
	for srv.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session was never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The reclaimed fingerprint must reach dedup-2: exactly the one
	// orphaned chunk gets stored.
	c2, err := proto.Dial(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Send(proto.Dedup2Request{RunSIU: true}); err != nil {
		t.Fatal(err)
	}
	msg, err = c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	done, is := msg.(proto.Dedup2Done)
	if !is {
		t.Fatalf("Dedup2Request reply = %T %+v", msg, msg)
	}
	if done.Err != "" {
		t.Fatalf("dedup-2 after reap failed: %s", done.Err)
	}
	if done.NewChunks != 1 {
		t.Fatalf("dedup-2 stored %d new chunks, want the 1 reclaimed orphan", done.NewChunks)
	}
}
