// Package analyzers holds debarvet's checks: the five project-specific
// analyzers enforcing DEBAR's durability, locking and I/O-deadline
// invariants, plus stdlib-only ports of the curated x/tools passes not
// in stock vet. See tools/debarvet/README.md for the catalogue.
package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"

	"debar/tools/debarvet/analysis"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		SyncClose,
		GuardedBy,
		RawConn,
		MetricName,
		ErrDiscard,
		LostCancel,
		UnusedResult,
	}
}

// calleeOf resolves the called function or method object of a call
// expression, or nil for builtins, conversions and indirect calls.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Type().(*types.Signature).Recv() == nil
}

// recvNamed returns the named type of a method's receiver (through one
// pointer), or nil.
func recvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (through one pointer) is pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// returnsError reports whether the function's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// constString returns the compile-time string value of e, if it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constFloat returns the compile-time numeric value of e, if it has one.
func constFloat(info *types.Info, e ast.Expr) (float64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	f, ok := constant.Val(constant.ToFloat(tv.Value)).(float64)
	if !ok {
		if r, isRat := constant.Val(constant.ToFloat(tv.Value)).(interface{ Float64() (float64, bool) }); isRat {
			v, _ := r.Float64()
			return v, true
		}
		return 0, false
	}
	return f, true
}

// rootIdent returns the leftmost identifier of a selector chain
// (a.b.c -> a), or nil if the chain is not rooted at a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}
