package debar

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"debar/internal/client"
	"debar/internal/faultproxy"
	"debar/internal/proto"
	"debar/internal/store"
)

// The chaos suite drives full backup→fault→retry→restore cycles through
// the faultproxy, asserting the end-to-end fault-tolerance contract: a
// cut or stalled link never wedges an operation, retries converge with
// resume (not blind re-runs), and the restored bytes are identical to
// the source. CI runs this suite under -race.

// chaosSrc writes a deterministic multi-megabyte source tree.
func chaosSrc(t *testing.T, seed uint64, size int) (string, []byte) {
	t.Helper()
	src := t.TempDir()
	rng := newDetRand(seed)
	buf := make([]byte, size)
	for i := 0; i < len(buf); i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], rng.next())
	}
	if err := os.WriteFile(filepath.Join(src, "data.bin"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return src, buf
}

// chaosClient returns a client aimed at addr with fast chaos-test retry
// pacing (the defaults back off for humans, not unit tests).
func chaosClient(addr string) *Client {
	c := client.New(addr, "chaos")
	c.Options.RetryBackoff = 50 * time.Millisecond
	return c
}

// TestChaosBackupRetriesThroughCut cuts the first backup connection after
// 256 KiB uploaded; the client's automatic retry must reconnect, resume
// via the fingerprint re-offer (the server primes the new session with
// the reclaimed pending set), and complete — after which dedup-2 and a
// byte-identical restore prove no chunk was lost or duplicated into the
// file index.
func TestChaosBackupRetriesThroughCut(t *testing.T) {
	sys, err := StartLocal(1, ServerConfig{IndexBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	src, _ := chaosSrc(t, 101, 2*1024*1024)

	px, err := faultproxy.New(sys.ServerAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	px.SetPlan(faultproxy.Plan{CutC2S: 512 << 10, FailConns: 1})

	c := chaosClient(px.Addr())
	// Small batches (~160 KiB frames at the ~10 KiB average chunk size) so
	// several complete ChunkBatch frames land before the cut; the default
	// 256-chunk batch would put the whole 2 MiB in one frame the cut
	// always truncates, leaving nothing to resume from.
	c.Options.BatchSize = 16
	stats, err := c.Backup("cut-backup-job", src)
	if err != nil {
		t.Fatalf("backup through cut link: %v", err)
	}
	if n := px.Accepted(); n < 2 {
		t.Fatalf("proxy accepted %d connections, want ≥2 (a retry)", n)
	}
	// The retry is a resume, not a re-run: chunks that landed before the
	// cut were reclaimed into the pending set and primed into the new
	// session's filter, so the successful attempt moved less than the
	// logical data. (The reclaim completes when the server sees the cut,
	// long before the client's ≥25ms backoff expires.)
	if stats.TransferredBytes >= stats.LogicalBytes {
		t.Fatalf("retried backup transferred %d of %d logical bytes — resume priming did not kick in",
			stats.TransferredBytes, stats.LogicalBytes)
	}

	if err := sys.RunDedup2(); err != nil {
		t.Fatalf("dedup-2: %v", err)
	}
	checkRestore(t, sys.ServerAddrs[0], "cut-backup-job", src)
}

// TestChaosRestoreResumesThroughCut cuts the first restore connection
// after 256 KiB downloaded; the retry must resume the interrupted file
// mid-stream (StartChunk > 0 on the wire) and deliver byte-identical
// content.
func TestChaosRestoreResumesThroughCut(t *testing.T) {
	sys, err := StartLocal(1, ServerConfig{IndexBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	src, want := chaosSrc(t, 103, 2*1024*1024)

	c := chaosClient(sys.ServerAddrs[0])
	if _, err := c.Backup("cut-restore-job", src); err != nil {
		t.Fatalf("backup: %v", err)
	}
	if err := sys.RunDedup2(); err != nil {
		t.Fatalf("dedup-2: %v", err)
	}

	px, err := faultproxy.New(sys.ServerAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	px.SetPlan(faultproxy.Plan{CutS2C: 256 << 10, FailConns: 1})

	rc := chaosClient(px.Addr())
	rc.Options.RestoreBatchSize = 32 // many batches: the cut lands mid-stream
	dest := t.TempDir()
	n, err := rc.Restore("cut-restore-job", dest)
	if err != nil {
		t.Fatalf("restore through cut link: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d files, want 1", n)
	}
	if px.Accepted() < 2 {
		t.Fatalf("proxy accepted %d connections, want ≥2 (a retry)", px.Accepted())
	}
	got, err := os.ReadFile(filepath.Join(dest, "data.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed restore is not byte-identical")
	}
	ents, err := os.ReadDir(dest)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("restore left temp files behind: %v", ents)
	}
}

// TestChaosStalledLinkTimesOutAndRetries freezes the first restore
// connection half-open after 128 KiB — no FIN, no bytes, the link just
// goes silent. The client's per-I/O deadline must detect the stall,
// classify it transient, and the retry (over a clean connection) must
// finish the restore. Without bounded I/O this test hangs forever.
func TestChaosStalledLinkTimesOutAndRetries(t *testing.T) {
	sys, err := StartLocal(1, ServerConfig{IndexBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	src, want := chaosSrc(t, 107, 1024*1024)

	c := chaosClient(sys.ServerAddrs[0])
	if _, err := c.Backup("stall-job", src); err != nil {
		t.Fatalf("backup: %v", err)
	}
	if err := sys.RunDedup2(); err != nil {
		t.Fatalf("dedup-2: %v", err)
	}

	px, err := faultproxy.New(sys.ServerAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	px.SetPlan(faultproxy.Plan{StallS2C: 128 << 10, FailConns: 1})

	rc := chaosClient(px.Addr())
	rc.Options.RestoreBatchSize = 32
	rc.Options.IOTimeout = 500 * time.Millisecond // detect the stall fast
	dest := t.TempDir()
	start := time.Now()
	if _, err := rc.Restore("stall-job", dest); err != nil {
		t.Fatalf("restore through stalled link: %v", err)
	}
	if took := time.Since(start); took > 20*time.Second {
		t.Fatalf("restore took %v — the stall was not detected by the I/O deadline", took)
	}
	got, err := os.ReadFile(filepath.Join(dest, "data.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restore after stall is not byte-identical")
	}
}

// TestChaosWriteFaultFlipsReadOnly injects ENOSPC into the durable
// store's write path mid-backup: the store must flip read-only, the
// client must receive the typed in-band refusal (proto.IsReadOnly, no
// retry storm), already-backed-up data must keep restoring, and a
// restart with the fault cleared must recover with no corruption.
func TestChaosWriteFaultFlipsReadOnly(t *testing.T) {
	dirData, srvData := t.TempDir(), t.TempDir()
	srcOK, _ := chaosSrc(t, 109, 1024*1024)
	srcFail, _ := chaosSrc(t, 113, 1024*1024)

	eng, err := store.Open(srvData, store.Options{IndexBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	d, ms, srv, saddr := bootDurable(t, dirData, srvData, eng)

	c := chaosClient(saddr)
	if _, err := c.Backup("healthy-job", srcOK); err != nil {
		t.Fatalf("backup before fault: %v", err)
	}
	if err := d.TriggerDedup2(true); err != nil {
		t.Fatalf("dedup-2: %v", err)
	}

	// The disk fills: every further WAL/container append fails.
	eng.InjectWriteFault(func() error { return syscall.ENOSPC })
	_, err = c.Backup("doomed-job", srcFail)
	if err == nil {
		t.Fatal("backup against a full disk reported success")
	}
	if !proto.IsReadOnly(err) {
		t.Fatalf("backup error = %v, want a typed read-only refusal", err)
	}
	// Permanent refusals must not burn the retry budget: the very next
	// backup attempt is refused up front by the session gate.
	if _, err := c.Backup("doomed-too", srcFail); err == nil || !proto.IsReadOnly(err) {
		t.Fatalf("second backup on read-only store: %v, want typed refusal", err)
	}
	if eng.ReadOnlyErr() == nil {
		t.Fatal("store did not flip read-only after the write fault")
	}
	// Degraded, not down: the stored job keeps restoring.
	checkRestore(t, saddr, "healthy-job", srcOK)
	shutdownDurable(t, d, ms, srv)

	// Operator intervention: restart over the same directory with the
	// fault gone. The store must come back writable and uncorrupted.
	eng2, err := store.Open(srvData, store.Options{IndexBits: 10})
	if err != nil {
		t.Fatalf("reopening the store after the fault: %v", err)
	}
	if eng2.ReadOnlyErr() != nil {
		t.Fatal("read-only state leaked across a restart")
	}
	d, ms, srv, saddr = bootDurable(t, dirData, srvData, eng2)
	defer shutdownDurable(t, d, ms, srv)
	c2 := chaosClient(saddr)
	if _, err := c2.Backup("doomed-job", srcFail); err != nil {
		t.Fatalf("backup after recovery: %v", err)
	}
	if err := d.TriggerDedup2(true); err != nil {
		t.Fatalf("dedup-2 after recovery: %v", err)
	}
	checkRestore(t, saddr, "healthy-job", srcOK)
	checkRestore(t, saddr, "doomed-job", srcFail)
}

// TestChaosSlowLinkStillCompletes shapes the backup link to a harsh
// latency/bandwidth budget and checks the progress-based I/O deadlines
// do NOT fire: slow-but-moving traffic must never be mistaken for a
// stall, even with a timeout far below the total transfer time.
func TestChaosSlowLinkStillCompletes(t *testing.T) {
	sys, err := StartLocal(1, ServerConfig{IndexBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	src, _ := chaosSrc(t, 127, 512*1024)

	px, err := faultproxy.New(sys.ServerAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	// ~256 KiB/s with jitter: the 512 KiB backup needs ≥2s end to end,
	// far beyond the 1s per-I/O timeout below.
	px.SetPlan(faultproxy.Plan{
		Latency:      2 * time.Millisecond,
		Jitter:       3 * time.Millisecond,
		BandwidthBPS: 256 << 10,
	})

	c := chaosClient(px.Addr())
	c.Options.IOTimeout = time.Second
	c.Options.Retries = -1 // any spurious timeout must fail loudly, not retry
	// Small batches so a single frame (~80 KiB at the ~10 KiB average
	// chunk size) always traverses the throttled link well inside the
	// per-I/O timeout; bigger batches would starve the ack reader for
	// over a second per frame and trip the deadline spuriously.
	c.Options.BatchSize = 8
	if _, err := c.Backup("slow-job", src); err != nil {
		t.Fatalf("backup over slow link: %v", err)
	}
	if err := sys.RunDedup2(); err != nil {
		t.Fatalf("dedup-2: %v", err)
	}
	checkRestore(t, sys.ServerAddrs[0], "slow-job", src)
}

// TestChaosInlineDedupCutResume cuts a backup that is skipping chunks via
// the inline fast path: generation one lands and dedup-2 moves it into
// containers, then generation two — half index-resident duplicates, half
// new data — runs through a link cut mid-exchange. The retry must resume
// and the restore must be byte-identical, proving an inline skip verdict
// never stood in for bytes that hadn't durably landed and the cut lost
// none of the new chunks.
func TestChaosInlineDedupCutResume(t *testing.T) {
	sys, err := StartLocal(1, ServerConfig{IndexBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	src1, old := chaosSrc(t, 137, 2*1024*1024)
	c0 := chaosClient(sys.ServerAddrs[0])
	if _, err := c0.Backup("inline-gen1", src1); err != nil {
		t.Fatalf("gen-1 backup: %v", err)
	}
	// Dedup-2 moves gen-1 into committed containers: from here the disk
	// index can answer inline skips for every gen-1 chunk.
	if err := sys.RunDedup2(); err != nil {
		t.Fatalf("dedup-2: %v", err)
	}

	// Generation two: the gen-1 bytes again (inline-skippable) plus 2 MiB
	// the index has never seen (must transfer, and must survive the cut).
	src2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(src2, "a-dup.bin"), old, 0o644); err != nil {
		t.Fatal(err)
	}
	rng := newDetRand(139)
	fresh := make([]byte, 2*1024*1024)
	for i := 0; i < len(fresh); i += 8 {
		binary.LittleEndian.PutUint64(fresh[i:], rng.next())
	}
	if err := os.WriteFile(filepath.Join(src2, "b-new.bin"), fresh, 0o644); err != nil {
		t.Fatal(err)
	}

	px, err := faultproxy.New(sys.ServerAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	px.SetPlan(faultproxy.Plan{CutC2S: 512 << 10, FailConns: 1})

	c := chaosClient(px.Addr())
	c.Options.BatchSize = 16 // several frames land before the cut (see above)
	stats, err := c.Backup("inline-gen2", src2)
	if err != nil {
		t.Fatalf("backup through cut link: %v", err)
	}
	if n := px.Accepted(); n < 2 {
		t.Fatalf("proxy accepted %d connections, want ≥2 (a retry)", n)
	}
	if stats.InlineSkippedBytes == 0 {
		t.Fatal("duplicate half produced no inline skips — the cut scenario never exercised the fast path")
	}

	if err := sys.RunDedup2(); err != nil {
		t.Fatalf("dedup-2: %v", err)
	}
	checkRestore(t, sys.ServerAddrs[0], "inline-gen2", src2)
	checkRestore(t, sys.ServerAddrs[0], "inline-gen1", src1)
}

// errInjected is a sentinel for fault hooks asserting wrap fidelity.
var errInjected = errors.New("injected media error")

// TestChaosWriteFaultNonENOSPC checks that an arbitrary injected write
// error (not ENOSPC) also refuses the backup cleanly — the client error
// carries the refusal in-band rather than a dropped connection.
func TestChaosWriteFaultNonENOSPC(t *testing.T) {
	dirData, srvData := t.TempDir(), t.TempDir()
	src, _ := chaosSrc(t, 131, 512*1024)

	eng, err := store.Open(srvData, store.Options{IndexBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	d, ms, srv, saddr := bootDurable(t, dirData, srvData, eng)
	defer shutdownDurable(t, d, ms, srv)

	eng.InjectWriteFault(func() error { return errInjected })
	c := chaosClient(saddr)
	if _, err := c.Backup("media-job", src); err == nil {
		t.Fatal("backup against failing media reported success")
	} else if !proto.IsReadOnly(err) {
		t.Fatalf("backup error = %v, want typed read-only refusal", err)
	}
	_ = d
}
