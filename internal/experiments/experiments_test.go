package experiments

import (
	"strings"
	"testing"
)

// tinyMonth returns a fast configuration for tests: heavily scaled.
func tinyMonth() MonthConfig {
	cfg := DefaultMonthConfig()
	cfg.Scale = 4096
	cfg.Days = 10
	return cfg
}

func TestRunMonthShape(t *testing.T) {
	res, err := RunMonth(tinyMonth())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 10 {
		t.Fatalf("days = %d", len(res.Days))
	}
	if res.TotalLogical == 0 || res.TotalStored == 0 {
		t.Fatal("no data processed")
	}
	// Global compression in the paper's neighbourhood (9.39:1).
	overall := float64(res.TotalLogical) / float64(res.TotalStored)
	if overall < 3 || overall > 25 {
		t.Fatalf("overall compression %.2f implausible", overall)
	}
	// dedup-1 cumulative compression near 3.6:1 (paper Figure 7).
	last := res.Days[len(res.Days)-1]
	if last.Dedup1Cum < 2 || last.Dedup1Cum > 6 {
		t.Fatalf("dedup-1 cum compression %.2f, paper ≈3.6", last.Dedup1Cum)
	}
	// DEBAR and DDFS must store nearly the same physical volume (Fig 6).
	diff := float64(res.DDFSStored-res.TotalStored) / float64(res.TotalStored)
	if diff < -0.2 || diff > 0.2 {
		t.Fatalf("DDFS stored %.0f vs DEBAR %.0f: differ by %.0f%%",
			float64(res.DDFSStored), float64(res.TotalStored), diff*100)
	}
	// dedup-2 ran several times but not every day (paper: 14 of 31).
	if res.Dedup2Runs < 1 || res.Dedup2Runs >= len(res.Days) {
		t.Fatalf("dedup-2 ran %d times over %d days", res.Dedup2Runs, len(res.Days))
	}
	if res.SIURuns > res.Dedup2Runs {
		t.Fatalf("SIU runs %d exceed SIL runs %d", res.SIURuns, res.Dedup2Runs)
	}
}

func TestRunMonthThroughputShape(t *testing.T) {
	res, err := RunMonth(tinyMonth())
	if err != nil {
		t.Fatal(err)
	}
	last := res.Days[len(res.Days)-1]
	// dedup-1 cumulative throughput beats the NIC (preliminary filtering
	// multiplies effective bandwidth; paper: 641.6 vs 210 MB/s).
	if last.Dedup1CumThr < 250 {
		t.Fatalf("dedup-1 cum thr %.1f MB/s, want >250 (filter not helping)", last.Dedup1CumThr)
	}
	// Total cumulative throughput should exceed DDFS's (paper 329 vs 189).
	if last.TotalCumThr < last.DDFSCumThr {
		t.Fatalf("DEBAR total %.1f ≤ DDFS %.1f MB/s", last.TotalCumThr, last.DDFSCumThr)
	}
	// DDFS is capped by the NIC (≈210 MB/s) minus flush time.
	if last.DDFSCumThr > 215 {
		t.Fatalf("DDFS cum thr %.1f MB/s exceeds its NIC", last.DDFSCumThr)
	}
	if last.DDFSCumThr < 100 {
		t.Fatalf("DDFS cum thr %.1f MB/s implausibly low", last.DDFSCumThr)
	}
}

func TestMonthFormatters(t *testing.T) {
	res, err := RunMonth(tinyMonth())
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{
		"fig6": res.FormatFig6(), "fig7": res.FormatFig7(),
		"fig8": res.FormatFig8(), "fig9": res.FormatFig9(),
	} {
		if !strings.Contains(s, "paper") || len(strings.Split(s, "\n")) < 5 {
			t.Fatalf("%s formatting too thin:\n%s", name, s)
		}
	}
}

func TestRunSweepMatchesPaperTimes(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Scale = 8192
	cfg.IndexSizes = []int64{32 * gb, 512 * gb}
	cfg.CacheSizes = []int64{1 * gb}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Paper Figure 10: 32 GB → SIL 2.53 min, SIU 6.16 min (±15%).
	p32 := res.Points[0]
	if m := p32.SILTime.Minutes(); m < 2.1 || m > 3.0 {
		t.Fatalf("SIL(32GB) = %.2f min, paper 2.53", m)
	}
	if m := p32.SIUTime.Minutes(); m < 5.2 || m > 7.1 {
		t.Fatalf("SIU(32GB) = %.2f min, paper 6.16", m)
	}
	// 512 GB → 38.98 / 97.07 min.
	p512 := res.Points[1]
	if m := p512.SILTime.Minutes(); m < 33 || m > 45 {
		t.Fatalf("SIL(512GB) = %.2f min, paper 38.98", m)
	}
	if m := p512.SIUTime.Minutes(); m < 83 || m > 112 {
		t.Fatalf("SIU(512GB) = %.2f min, paper 97.07", m)
	}
	// Figure 11: speeds beat random lookup by orders of magnitude.
	if p32.SILSpeed < 50*res.RandomLookup {
		t.Fatalf("SIL speed %.0f not ≫ random %.0f", p32.SILSpeed, res.RandomLookup)
	}
	if p512.SIUSpeed < 5*res.RandomUpdate {
		t.Fatalf("SIU speed %.0f not ≫ random %.0f", p512.SIUSpeed, res.RandomUpdate)
	}
	if !strings.Contains(res.FormatFig10(), "SIL") || !strings.Contains(res.FormatFig11(), "rand-look") {
		t.Fatal("sweep formatters broken")
	}
}

func TestRunCapacityShape(t *testing.T) {
	month, err := RunMonth(tinyMonth())
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultSweepConfig()
	scfg.Scale = 8192
	scfg.CacheSizes = []int64{1 * gb}
	sweep, err := RunSweep(scfg)
	if err != nil {
		t.Fatal(err)
	}
	capres, err := RunCapacity(month, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(capres.Points) != 5 {
		t.Fatalf("points = %d", len(capres.Points))
	}
	// DDFS collapses past 8 TB: the 128 TB point must be a small
	// fraction of the 8 TB point (paper: "under 28%").
	first, last := capres.Points[0], capres.Points[len(capres.Points)-1]
	if last.DDFS > first.DDFS*0.4 {
		t.Fatalf("DDFS at 128TB (%.1f) not collapsed vs 8TB (%.1f)", last.DDFS, first.DDFS)
	}
	// DEBAR degrades gracefully: at 128 TB it retains most throughput
	// and beats DDFS by a wide margin (the paper's headline crossover).
	if last.DebarTotal < 3*last.DDFS {
		t.Fatalf("DEBAR at 128TB (%.1f) not ≫ DDFS (%.1f)", last.DebarTotal, last.DDFS)
	}
	if first.DebarTotal < last.DebarTotal {
		t.Fatal("DEBAR throughput should decrease with capacity")
	}
	if !strings.Contains(capres.Format(), "DEBAR-total") {
		t.Fatal("capacity formatter broken")
	}
	if _, err := RunCapacity(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func tinyCluster() ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.Scale = 8192
	cfg.W = 2
	cfg.ClientsPerSrv = 2
	cfg.Versions = 3
	cfg.StorageNodes = 4
	return cfg
}

func TestRunClusterShape(t *testing.T) {
	res, err := RunCluster(tinyCluster())
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 4 {
		t.Fatalf("servers = %d", res.Servers)
	}
	if res.LogicalBytes == 0 || res.StoredBytes == 0 {
		t.Fatal("no data moved")
	}
	if res.StoredBytes >= res.LogicalBytes {
		t.Fatal("no deduplication achieved")
	}
	// ≈90% duplicates → stored ≈ (1 + 0.1×(V-1))/V of logical per stream.
	ratio := float64(res.StoredBytes) / float64(res.LogicalBytes)
	if ratio > 0.6 {
		t.Fatalf("stored/logical = %.2f, expected ≤0.6 at 90%% dup", ratio)
	}
	if res.PSILSpeed <= 0 || res.PSIUSpeed <= 0 {
		t.Fatalf("speeds: PSIL %.0f PSIU %.0f", res.PSILSpeed, res.PSIUSpeed)
	}
	if res.TotalThr <= 0 || res.Dedup1Thr < res.TotalThr {
		t.Fatalf("throughputs: d1 %.1f total %.1f", res.Dedup1Thr, res.TotalThr)
	}
}

func TestFig13SpeedsDecreaseWithIndexSize(t *testing.T) {
	base := tinyCluster()
	res, err := RunFig13(base, []int64{32 * gb, 128 * gb})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[1].PSILSpeed >= res.Rows[0].PSILSpeed {
		t.Fatalf("PSIL speed did not fall with index size: %.0f → %.0f",
			res.Rows[0].PSILSpeed, res.Rows[1].PSILSpeed)
	}
	if !strings.Contains(res.Format(), "PSIL") {
		t.Fatal("fig13 formatter broken")
	}
}

func TestFig15ScalesWithServers(t *testing.T) {
	base := tinyCluster()
	base.ClientsPerSrv = 2
	res, err := RunFig15(base, 32*gb, []uint{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	one, four := res.Rows[0], res.Rows[1]
	if four.TotalThr < one.TotalThr*2 {
		t.Fatalf("4 servers %.0f MB/s not ≥2x 1 server %.0f MB/s", four.TotalThr, one.TotalThr)
	}
	if four.CapacityTB != one.CapacityTB*4 {
		t.Fatalf("capacity did not scale: %f vs %f", four.CapacityTB, one.CapacityTB)
	}
	if !strings.Contains(res.Format(), "servers") {
		t.Fatal("fig15 formatter broken")
	}
}

func TestFig14bReadStable(t *testing.T) {
	cfg := tinyCluster()
	cfg.Versions = 4
	// A version must span several 8 MB containers or LPC trivially caches
	// whole versions; 1/1024 scale gives ≈6 containers per version.
	cfg.Scale = 1024
	res, err := RunFig14b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 4 {
		t.Fatalf("versions = %d", len(res.Versions))
	}
	for i, thr := range res.Versions {
		if thr <= 0 {
			t.Fatalf("version %d throughput %.1f", i+1, thr)
		}
	}
	// Later versions must not beat the all-new first version: duplicate
	// chunks spread over old containers cost extra loads (the paper's
	// fragmentation effect; v1 1620 → later ≈1520 MB/s).
	last := res.Versions[len(res.Versions)-1]
	if last > res.Versions[0]*1.25 {
		t.Fatalf("read throughput rose over versions: %v", res.Versions)
	}
	if !strings.Contains(res.Format(), "version") {
		t.Fatal("fig14b formatter broken")
	}
}

func TestTableFormatters(t *testing.T) {
	t1 := FormatTable1()
	if !strings.Contains(t1, "Pr(D)") {
		t.Fatalf("table1:\n%s", t1)
	}
	t2, err := FormatTable2(14, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2, "eta@paper-n") {
		t.Fatalf("table2:\n%s", t2)
	}
}

func TestScaleHelpers(t *testing.T) {
	s := Scale(128)
	if s.Bytes(1280) != 10 {
		t.Fatal("Bytes")
	}
	if s.Bytes(1) != 1 {
		t.Fatal("Bytes floor")
	}
	if s.Chunks(128*ChunkSize) != 1 {
		t.Fatal("Chunks")
	}
	if s.PaperTime(1) != 128 {
		t.Fatal("PaperTime")
	}
	if indexBitsFor(32*gb, 1) != 26 {
		t.Fatalf("indexBitsFor(32GB, S=1) = %d, want 26 (§5.2)", indexBitsFor(32*gb, 1))
	}
}
