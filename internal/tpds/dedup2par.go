// Parallel sharded dedup-2: the bucket-ordered disk index splits into P
// contiguous fingerprint-prefix regions (diskindex.Regions), the
// undetermined-fingerprint cache is partitioned by the same prefixes
// (indexcache.Partitioned), and one SIL worker per region scans its index
// range independently. The phases overlap: as soon as a region's SIL
// completes, that worker packs the region's new chunks into containers
// (from a lock-free snapshot of the chunk log) while other regions are
// still scanning. Container commits to the repository are pipelined in
// region order — region i appends only after regions < i have appended —
// so container IDs are deterministic for a given worker count, and the
// repository keeps a single sequential append stream. Each worker sorts
// its unregistered entries by home bucket; because regions are contiguous
// and disjoint, concatenating the per-region runs in region order yields a
// globally sorted run that SIU merges into the index in one sequential
// pass without re-sorting.
package tpds

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"debar/internal/chunklog"
	"debar/internal/container"
	"debar/internal/diskindex"
	"debar/internal/fp"
	"debar/internal/indexcache"
	"debar/internal/obs"
)

// Per-region wall-clock latencies of the three dedup-2 stages each SIL
// worker runs: the sequential index scan, container packing from the
// log snapshot, and the in-turn repository commit (which includes the
// wait for the region's commit turn — a wide gap between pack and
// commit distributions means the commit chain, not the scans, paces
// the pass).
var (
	mRegionScanSec   = obs.GetHistogram("dedup2_region_scan_seconds", obs.DurationBuckets)
	mRegionPackSec   = obs.GetHistogram("dedup2_region_pack_seconds", obs.DurationBuckets)
	mRegionCommitSec = obs.GetHistogram("dedup2_region_commit_seconds", obs.DurationBuckets)
)

// SILRegion performs the sequential index lookup over one index region: it
// scans the region's buckets in large sequential windows and removes every
// fingerprint it finds from the shard cache. The shard must hold exactly
// the undetermined fingerprints homed in the region, so the worker never
// touches another worker's state.
//
// Bucket overflow can place an entry in a bucket adjacent to its home
// (diskindex.Insert tries the neighbours of a full bucket), so an entry
// homed just inside this region may physically live one bucket past either
// edge. The scan therefore extends one bucket beyond each boundary:
// entries homed in other regions simply miss in this shard (Remove is a
// no-op for fingerprints the shard does not hold), while a
// boundary-overflowed entry of this region is found exactly once, keeping
// the sharded pass's verdicts identical to a whole-index SIL.
func SILRegion(ix *diskindex.Index, r diskindex.Region, shard *indexcache.Cache, scanBuckets int) (dups int64, err error) {
	if r.Start > 0 {
		r.Start--
	}
	if total := ix.Config().Buckets(); r.End < total {
		r.End++
	}
	err = ix.ScanRegion(r, scanBuckets, func(w *diskindex.Window) error {
		w.ForEachEntry(func(_ uint64, e fp.Entry) {
			if shard.Remove(e.FP) {
				dups++
			}
		})
		return nil
	})
	return dups, err
}

// sortEntriesByBucket orders entries by home bucket, breaking ties by
// fingerprint — SIU's canonical merge order.
func sortEntriesByBucket(ix *diskindex.Index, entries []fp.Entry) {
	sort.Slice(entries, func(i, j int) bool {
		bi, bj := ix.BucketOf(entries[i].FP), ix.BucketOf(entries[j].FP)
		if bi != bj {
			return bi < bj
		}
		return entries[i].FP.Less(entries[j].FP)
	})
}

// stagedContainer is a sealed container awaiting its region's commit turn,
// with the fingerprints it holds (their cache nodes get the container ID
// once the repository assigns it).
type stagedContainer struct {
	c   *container.Container
	fps []fp.FP
}

// regionResult carries one worker's contribution to the merged
// Dedup2Result.
type regionResult struct {
	indexDups    int64
	checkingDups int64
	store        StoreResult
	unreg        []fp.Entry
	err          error
}

// runSILAndStoreParallel is the sharded counterpart of the sequential
// SIL + chunk-store pass in RunSILAndStore. Semantics are identical —
// the same fingerprints are judged duplicate or new, the same chunks are
// stored exactly once, and the merged dedup counters match the sequential
// pass — but containers pack per region (each region's new chunks in
// stream order), so container IDs are region-relative rather than global
// stream order and each region seals its own tail container (a few more,
// slightly emptier containers than one global packing would produce).
func (cs *ChunkStore) runSILAndStoreParallel(undetermined []fp.FP, log *chunklog.Log, cacheBits uint, workers int) (Dedup2Result, []fp.Entry, error) {
	var res Dedup2Result
	res.Undetermined = int64(len(undetermined))

	regions := cs.Index.Regions(workers)
	p := len(regions) // clamped by the bucket count
	route := func(f fp.FP) int {
		return diskindex.RegionOf(regions, cs.Index.BucketOf(f))
	}
	part := indexcache.NewPartitioned(cacheBits, p, route)
	for _, f := range undetermined {
		if _, err := part.Insert(f); err != nil {
			return res, nil, fmt.Errorf("tpds: building index cache: %w", err)
		}
	}

	// Partition the checking file's pending fingerprints in one scan here,
	// instead of letting all P workers walk the whole pending map.
	var checkByRegion [][]fp.FP
	if cs.Checking != nil {
		checkByRegion = make([][]fp.FP, p)
		for f := range cs.Checking.pending {
			i := route(f)
			checkByRegion[i] = append(checkByRegion[i], f)
		}
	}

	view, err := log.View()
	if err != nil {
		return res, nil, fmt.Errorf("tpds: snapshotting chunk log: %w", err)
	}

	// turns[i] opens when region i may commit its containers; the chain
	// starts open at region 0 and each worker opens its successor on exit
	// (error included, so a failed region never deadlocks the rest).
	// failed flips on the first region error: regions that have not yet
	// committed then skip their appends, since the pass will return an
	// error and unregistered entries will be discarded — appending would
	// strand unreachable chunks in the repository.
	turns := make([]chan struct{}, p+1)
	for i := range turns {
		turns[i] = make(chan struct{})
	}
	close(turns[0])
	var failed atomic.Bool

	results := make([]regionResult, p)
	var wg sync.WaitGroup
	for i := range regions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(turns[i+1])
			var check []fp.FP
			if checkByRegion != nil {
				check = checkByRegion[i]
			}
			results[i] = cs.runRegion(i, regions[i], part.Shard(i), check, view, turns[i], &failed)
		}(i)
	}
	wg.Wait()

	// Merge in region order: counters sum, and the per-region sorted entry
	// runs concatenate into one globally bucket-sorted run (regions are
	// contiguous and disjoint) for SIU's single sequential merge pass.
	var unreg []fp.Entry
	var firstErr error
	for i := range results {
		r := &results[i]
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		res.IndexDups += r.indexDups
		res.CheckingDups += r.checkingDups
		res.Store.NewChunks += r.store.NewChunks
		res.Store.NewBytes += r.store.NewBytes
		res.Store.DupChunks += r.store.DupChunks
		res.Store.DupBytes += r.store.DupBytes
		res.Store.Containers += r.store.Containers
		unreg = append(unreg, r.unreg...)
	}
	if firstErr != nil {
		return res, nil, firstErr
	}
	res.Unregistered = int64(len(unreg))
	if cs.Checking != nil {
		cs.Checking.Add(unreg)
	}
	return res, unreg, nil
}

// runRegion is one worker: SIL over the region, checking-file filtering of
// the region's pending fingerprints, container packing of the region's new
// chunks from the log snapshot, then — once the region's commit turn
// opens — appending the staged containers to the repository and collecting
// the region's sorted unregistered entries.
func (cs *ChunkStore) runRegion(idx int, region diskindex.Region, shard *indexcache.Cache,
	checking []fp.FP, view *chunklog.View, turn <-chan struct{}, failed *atomic.Bool) regionResult {

	var r regionResult
	fail := func(err error) regionResult {
		failed.Store(true)
		r.err = err
		return r
	}

	scanStart := time.Now()
	dups, err := SILRegion(cs.Index, region, shard, cs.ScanBuckets)
	mRegionScanSec.Since(scanStart)
	if err != nil {
		return fail(fmt.Errorf("tpds: SIL region %d [%d,%d): %w", idx, region.Start, region.End, err))
	}
	r.indexDups = dups

	// Checking-file filter, restricted to this region's pending
	// fingerprints ("the lookup result is further de-duplicated", §5.4).
	for _, f := range checking {
		if shard.Remove(f) {
			r.checkingDups++
		}
	}

	// Pack the region's surviving chunks in stream order through the
	// shared packing engine. Containers are sealed into memory and
	// committed later, because container IDs must be assigned in region
	// order to stay deterministic.
	var staged []stagedContainer
	packStart := time.Now()
	r.store, err = packChunks(view.Iterate,
		func(f fp.FP) bool { return region.Contains(cs.Index.BucketOf(f)) },
		shard, cs.ContainerSize, cs.MetaOnly, false,
		func(c *container.Container, fps []fp.FP) error {
			staged = append(staged, stagedContainer{c: c, fps: fps})
			return nil
		})
	mRegionPackSec.Since(packStart)
	if err != nil {
		return fail(fmt.Errorf("tpds: chunk storing region %d: %w", idx, err))
	}

	// Commit: wait for the region's turn, then append in seal order. The
	// repository sees one ordered append stream across all regions.
	commitStart := time.Now()
	<-turn
	if failed.Load() {
		return r // pass already doomed: do not strand containers
	}
	for _, sc := range staged {
		id, err := cs.Repo.Append(sc.c)
		if err != nil {
			mRegionCommitSec.Since(commitStart)
			return fail(fmt.Errorf("tpds: committing region %d containers: %w", idx, err))
		}
		for _, f := range sc.fps {
			shard.SetCID(f, id)
		}
	}
	mRegionCommitSec.Since(commitStart)

	// Unregistered entries of this region, sorted by home bucket for the
	// concatenated SIU run.
	for _, e := range shard.Collect() {
		if e.CID != fp.NilContainer {
			r.unreg = append(r.unreg, e)
		}
	}
	sortEntriesByBucket(cs.Index, r.unreg)
	return r
}
