package client

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"debar/internal/chunker"
	"debar/internal/fp"
	"debar/internal/proto"
	"debar/internal/retry"
)

// VerifyResult summarises a verify job (§3.1: the director "supervises
// the entire backup, restore, verify ... operations").
type VerifyResult struct {
	Checked  int // files compared
	Matched  int // files whose chunk fingerprints all match
	Modified []string
	Missing  []string // in the backup but absent locally
}

// OK reports whether the local tree matches the backup exactly.
func (v VerifyResult) OK() bool { return len(v.Modified) == 0 && len(v.Missing) == 0 }

// Verify compares the latest run of jobName against the local directory
// tree without transferring any chunk data: files are re-anchored and
// re-fingerprinted locally and compared against the stored file indexes.
// Transient connection failures retry the whole pass with backoff (the
// pass moves no data and holds no server state, so a re-run is cheap and
// safe).
func (c *Client) Verify(jobName, dir string) (VerifyResult, error) {
	var res VerifyResult
	if err := c.Options.Validate(); err != nil {
		return res, err
	}
	pol := c.retryPolicy()
	var err error
	for attempt := 0; ; attempt++ {
		res, err = c.verifyOnce(jobName, dir)
		if err == nil || !retry.Transient(err) || attempt >= pol.Attempts-1 {
			return res, err
		}
		time.Sleep(pol.Backoff(attempt))
	}
}

// verifyOnce is one verify pass over one connection.
func (c *Client) verifyOnce(jobName, dir string) (VerifyResult, error) {
	var res VerifyResult
	conn, err := c.dial()
	if err != nil {
		return res, err
	}
	defer conn.Close()

	if err := conn.Send(proto.ListFiles{JobName: jobName}); err != nil {
		return res, err
	}
	msg, err := conn.Recv()
	if err != nil {
		return res, err
	}
	list, ok := msg.(proto.FileList)
	if !ok {
		if ack, is := msg.(proto.Ack); is {
			return res, fmt.Errorf("client: verify: %w", proto.AckError(ack))
		}
		return res, fmt.Errorf("client: unexpected ListFiles reply %T", msg)
	}

	for _, path := range list.Paths {
		// Metadata-only request: the entry's chunk fingerprints are all
		// verify compares against, so no chunk data ever moves.
		if err := conn.Send(proto.RestoreMeta{JobName: jobName, Path: path}); err != nil {
			return res, err
		}
		msg, err := conn.Recv()
		if err != nil {
			return res, err
		}
		meta, ok := msg.(proto.RestoreBegin)
		if !ok {
			if ack, is := msg.(proto.Ack); is {
				return res, fmt.Errorf("client: verify %s: %w", path, proto.AckError(ack))
			}
			return res, fmt.Errorf("client: unexpected RestoreMeta reply %T", msg)
		}
		res.Checked++
		// Same traversal guard as restore: a hostile or corrupt server
		// path must not make verify read (and fingerprint-compare) files
		// outside the tree being verified.
		local, err := safeJoin(dir, path)
		if err != nil {
			return res, err
		}
		match, err := c.fileMatches(local, meta.Entry)
		if errors.Is(err, os.ErrNotExist) {
			res.Missing = append(res.Missing, path)
			continue
		}
		if err != nil {
			return res, err
		}
		if match {
			res.Matched++
		} else {
			res.Modified = append(res.Modified, path)
		}
	}
	return res, nil
}

// fileMatches re-chunks the local file and compares fingerprints against
// the stored file index.
func (c *Client) fileMatches(path string, entry proto.FileEntry) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	ch, err := chunker.New(f, c.Options.Chunking)
	if err != nil {
		return false, err
	}
	i := 0
	for {
		chunk, err := ch.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return false, err
		}
		if i >= len(entry.Chunks) || fp.New(chunk.Data) != entry.Chunks[i] {
			return false, nil
		}
		i++
	}
	return i == len(entry.Chunks), nil
}
