package server_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"debar/internal/client"
	"debar/internal/fp"
	"debar/internal/proto"
	"debar/internal/server"
)

// TestConcurrentSessions drives ≥4 clients backing up different datasets
// to one server at the same time, runs dedup-2, and verifies every
// dataset restores byte-identically. Run under -race this exercises the
// per-session locking of the server and the client's pipelined data path.
func TestConcurrentSessions(t *testing.T) {
	d, srvAddr := startSystem(t)

	const nClients = 4
	type job struct {
		name  string
		src   string
		files map[string][]byte
	}
	jobs := make([]job, nClients)
	for i := range jobs {
		src := t.TempDir()
		jobs[i] = job{
			name:  fmt.Sprintf("conc-job-%d", i),
			src:   src,
			files: writeTree(t, src, int64(100+i)),
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, nClients)
	stats := make([]client.BackupStats, nClients)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := testClient(srvAddr)
			c.Name = fmt.Sprintf("conc-client-%d", i)
			stats[i], errs[i] = c.Backup(jobs[i].name, jobs[i].src)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if stats[i].Files != 5 {
			t.Fatalf("client %d backed up %d files", i, stats[i].Files)
		}
		if stats[i].TransferredBytes >= stats[i].LogicalBytes {
			t.Fatalf("client %d: no dedup-1 savings (%d of %d)",
				i, stats[i].TransferredBytes, stats[i].LogicalBytes)
		}
	}

	if err := d.TriggerDedup2(true); err != nil {
		t.Fatal(err)
	}

	for i := range jobs {
		dst := t.TempDir()
		c := testClient(srvAddr)
		n, err := c.Restore(jobs[i].name, dst)
		if err != nil {
			t.Fatalf("restore job %d: %v", i, err)
		}
		if n != 5 {
			t.Fatalf("job %d restored %d files", i, n)
		}
		for rel, want := range jobs[i].files {
			got, err := os.ReadFile(filepath.Join(dst, rel))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("job %d file %s differs after concurrent backup", i, rel)
			}
		}
	}
}

// TestConcurrentRestores streams N parallel restores of different jobs
// against one server. Run under -race this exercises the internally
// synchronised restorer (shared LPC cache, concurrent index lookups and
// container loads) and the per-connection restore streams overlapping
// instead of queueing behind a global restore lock.
func TestConcurrentRestores(t *testing.T) {
	d, srvAddr := startSystem(t)

	const nJobs = 4
	type job struct {
		name  string
		files map[string][]byte
	}
	jobs := make([]job, nJobs)
	for i := range jobs {
		src := t.TempDir()
		jobs[i] = job{
			name:  fmt.Sprintf("par-restore-%d", i),
			files: writeTree(t, src, int64(300+i)),
		}
		c := testClient(srvAddr)
		c.Name = fmt.Sprintf("par-client-%d", i)
		if _, err := c.Backup(jobs[i].name, src); err != nil {
			t.Fatalf("backup %d: %v", i, err)
		}
	}
	if err := d.TriggerDedup2(true); err != nil {
		t.Fatal(err)
	}

	dsts := make([]string, nJobs)
	for i := range dsts {
		dsts[i] = t.TempDir()
	}
	var wg sync.WaitGroup
	errs := make([]error, nJobs)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := testClient(srvAddr)
			c.Options.RestoreBatchSize = 32 // many small batches: maximise interleaving
			c.Options.RestoreWindow = 2
			var n int
			n, errs[i] = c.Restore(jobs[i].name, dsts[i])
			if errs[i] == nil && n != 5 {
				errs[i] = fmt.Errorf("restored %d files, want 5", n)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent restore %d: %v", i, err)
		}
		for rel, want := range jobs[i].files {
			got, err := os.ReadFile(filepath.Join(dsts[i], rel))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("job %d file %s differs after concurrent restore", i, rel)
			}
		}
	}
}

// TestConcurrentBackupAndRestore overlaps a restore of one job with a
// backup of another: the restorer must not be blocked behind (or block)
// an in-flight dedup-1 stream.
func TestConcurrentBackupAndRestore(t *testing.T) {
	d, srvAddr := startSystem(t)

	src1 := t.TempDir()
	files1 := writeTree(t, src1, 51)
	c1 := testClient(srvAddr)
	if _, err := c1.Backup("overlap-a", src1); err != nil {
		t.Fatal(err)
	}
	if err := d.TriggerDedup2(true); err != nil {
		t.Fatal(err)
	}

	src2 := t.TempDir()
	writeTree(t, src2, 52)
	done := make(chan error, 1)
	go func() {
		c2 := testClient(srvAddr)
		_, err := c2.Backup("overlap-b", src2)
		done <- err
	}()

	dst := t.TempDir()
	if _, err := c1.Restore("overlap-a", dst); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for rel, want := range files1 {
		got, err := os.ReadFile(filepath.Join(dst, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs when restored during a concurrent backup", rel)
		}
	}
}

// TestCloseUnblocksActiveConnections verifies Server.Close tears down
// in-flight connection handlers, not just the listener.
func TestCloseUnblocksActiveConnections(t *testing.T) {
	srv, err := server.New(server.Config{IndexBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := proto.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(proto.BackupStart{JobName: "close-test", Client: "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The handler side of conn must now be closed: a Recv on the idle
	// connection should fail promptly instead of hanging until we give up.
	errCh := make(chan error, 1)
	go func() {
		_, err := conn.Recv()
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv on a closed server's connection returned a message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("connection to closed server still open after 5s")
	}
}

// TestChunkBatchAtomicOnMismatch sends a batch whose middle chunk is
// corrupt and checks the whole batch is rejected without touching the
// session accounting, then that a corrected batch still lands.
func TestChunkBatchAtomicOnMismatch(t *testing.T) {
	srv, err := server.New(server.Config{IndexBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := proto.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.Send(proto.BackupStart{JobName: "atomic", Client: "c"}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	sess := msg.(proto.BackupStartOK).SessionID

	chunks := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	fps := make([]fp.FP, len(chunks))
	var sizes []uint32
	for i, c := range chunks {
		fps[i] = fp.New(c)
		sizes = append(sizes, uint32(len(c)))
	}
	if err := conn.Send(proto.FPBatch{SessionID: sess, FPs: fps, Sizes: sizes}); err != nil {
		t.Fatal(err)
	}
	if msg, err = conn.Recv(); err != nil {
		t.Fatal(err)
	}
	if v := msg.(proto.FPVerdicts); len(v.Verdicts) != 3 || !v.NeedsTransfer(0) || !v.NeedsTransfer(1) || !v.NeedsTransfer(2) {
		t.Fatalf("verdicts = %+v", msg)
	}

	// Middle chunk corrupted in transit: its payload no longer matches
	// the declared fingerprint.
	bad := [][]byte{chunks[0], []byte("CORRUPT"), chunks[2]}
	if err := conn.Send(proto.ChunkBatch{SessionID: sess, FPs: fps, Data: bad}); err != nil {
		t.Fatal(err)
	}
	if msg, err = conn.Recv(); err != nil {
		t.Fatal(err)
	}
	if ack := msg.(proto.Ack); ack.OK {
		t.Fatal("corrupt batch accepted")
	}

	// Retry with the correct payloads.
	if err := conn.Send(proto.ChunkBatch{SessionID: sess, FPs: fps, Data: chunks}); err != nil {
		t.Fatal(err)
	}
	if msg, err = conn.Recv(); err != nil {
		t.Fatal(err)
	}
	if ack := msg.(proto.Ack); !ack.OK {
		t.Fatalf("correct batch refused: %s", ack.Err)
	}

	if err := conn.Send(proto.BackupEnd{SessionID: sess}); err != nil {
		t.Fatal(err)
	}
	if msg, err = conn.Recv(); err != nil {
		t.Fatal(err)
	}
	done := msg.(proto.BackupDone)
	// Exactly one accepted copy of each chunk: the rejected batch must
	// contribute nothing to the transfer accounting.
	wantXfer := int64(len(chunks)*(fp.Size+1) + len("alphabetagamma"))
	if done.TransferredBytes != wantXfer {
		t.Fatalf("TransferredBytes = %d, want %d (failed batch must not count)",
			done.TransferredBytes, wantXfer)
	}
}
