// Package urtest exercises the unusedresult port: pure calls as bare
// statements.
package urtest

import (
	"fmt"
	"strings"
)

func f(s string) string {
	fmt.Sprintf("x %s", s) // want `result of fmt\.Sprintf is unused`
	strings.TrimSpace(s)   // want `result of strings\.TrimSpace is unused`
	fmt.Errorf("e %s", s)  // want `result of fmt\.Errorf is unused`
	t := strings.ToLower(s)
	fmt.Println(t) // ok: Println has side effects
	return t
}

func suppressed(s string) {
	fmt.Sprint(s) //debarvet:ignore unusedresult -- fixture: proves line suppression is honoured
}
